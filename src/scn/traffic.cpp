#include "scn/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/json.hpp"

namespace ovnes::scn {

double sample_heavy_tail(RngStream& rng, const HeavyTailConfig& cfg) {
  double v = 0.0;
  switch (cfg.law) {
    case HeavyTailConfig::Law::Pareto:
      v = rng.pareto(cfg.pareto_alpha, cfg.pareto_xmin);
      break;
    case HeavyTailConfig::Law::Lognormal:
      v = rng.lognormal(cfg.log_mu, cfg.log_sigma);
      break;
  }
  return std::min(v, cfg.cap);
}

double diurnal_level(const DiurnalConfig& cfg, double hour) {
  if (cfg.peak_ratio <= 1.0) return 1.0;
  const double trough = 1.0 / cfg.peak_ratio;
  const double shape =
      0.5 * (1.0 + std::cos(2.0 * std::numbers::pi * (hour - cfg.peak_hour) / 24.0));
  return trough + (1.0 - trough) * shape;
}

TrafficTable make_traffic_table(const TrafficModelConfig& cfg) {
  if (cfg.tenants == 0 || cfg.hours == 0) {
    throw std::invalid_argument("make_traffic_table: empty table");
  }
  const RngStream root(cfg.seed);
  TrafficTable t;
  t.tenants = cfg.tenants;
  t.hours = cfg.hours;

  // Shared hourly envelope: diurnal shape times any flash-crowd windows.
  t.envelope.resize(cfg.hours);
  for (std::size_t h = 0; h < cfg.hours; ++h) {
    t.envelope[h] = diurnal_level(cfg.diurnal, static_cast<double>(h));
  }
  for (std::size_t k = 0; k < cfg.flash.spikes; ++k) {
    RngStream fr = root.derive("flash", k);
    const double start = fr.uniform(0.0, static_cast<double>(cfg.hours));
    for (std::size_t h = 0; h < cfg.hours; ++h) {
      const auto hh = static_cast<double>(h);
      // Window may wrap past midnight.
      const double delta = std::fmod(hh - start + static_cast<double>(cfg.hours),
                                     static_cast<double>(cfg.hours));
      if (delta < cfg.flash.duration_hours) {
        t.envelope[h] *= cfg.flash.multiplier;
      }
    }
  }

  t.forecast_mbps.resize(cfg.tenants);
  t.realized_mbps.resize(cfg.tenants * cfg.hours);
  for (std::size_t i = 0; i < cfg.tenants; ++i) {
    RngStream tr = root.derive("tenant", i);
    const double scale = sample_heavy_tail(tr, cfg.heavy_tail);
    // The tenant contracts for its peak-hour rate; the operator's forecast
    // is exactly that declaration (converged oracle).
    const double peak = cfg.base_rate_mbps * scale;
    t.forecast_mbps[i] = peak;
    // Realized process: forecast error applies per tenant (mean-one jitter,
    // plus the systematic bias), the envelope per hour.
    double err = 1.0 + cfg.forecast.bias;
    if (cfg.forecast.noise != 0.0) {
      err *= std::exp(tr.gaussian(0.0, cfg.forecast.noise) -
                      0.5 * cfg.forecast.noise * cfg.forecast.noise);
    }
    if (err < 0.0) err = 0.0;
    for (std::size_t h = 0; h < cfg.hours; ++h) {
      t.realized_mbps[i * cfg.hours + h] = peak * err * t.envelope[h];
    }
  }
  return t;
}

std::string TrafficTable::to_text() const {
  std::string out;
  out.reserve(tenants * hours * 12);
  out += "tenants=" + std::to_string(tenants) +
         " hours=" + std::to_string(hours) + "\n";
  out += "envelope";
  for (const double e : envelope) {
    out += ' ';
    out += json::format_double(e);
  }
  out += '\n';
  for (std::size_t i = 0; i < tenants; ++i) {
    out += "t" + std::to_string(i) + " fc=" +
           json::format_double(forecast_mbps[i]);
    for (std::size_t h = 0; h < hours; ++h) {
      out += ' ';
      out += json::format_double(realized(i, h));
    }
    out += '\n';
  }
  return out;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t TrafficTable::digest() const { return fnv1a(to_text()); }

double hill_tail_index(std::vector<double> samples, std::size_t k) {
  if (samples.size() < 2 || k < 2 || k >= samples.size()) return 0.0;
  std::sort(samples.begin(), samples.end(), std::greater<>());
  const double x_k = samples[k];
  if (x_k <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += std::log(samples[i] / x_k);
  return sum > 0.0 ? static_cast<double>(k) / sum : 0.0;
}

}  // namespace ovnes::scn
