// Scenario topology families beyond the paper's three operator networks.
//
// The paper's evaluation grids run on statistical re-syntheses of three
// urban operator topologies (topo/generators.*, ~200 BSs published size).
// This module grows the workload space toward the ROADMAP's north star:
// parameterized *metro* and *WAN* families that scale from unit-test size
// to 10²–10³ nodes while keeping realistic degree and latency structure —
// the instances the Monte Carlo SLA-risk sweeps and bench_regression's
// pinned catalog run on.
//
//   * Metro: a two-tier city fabric — core switch ring in the centre,
//     aggregation switches in concentric rings around it, BSs scattered in
//     an annulus and homed to their nearest aggregation switches. Short
//     fiber spans (µs-scale propagation), high path redundancy through the
//     core, edge CUs multihomed into the core ring and a remote core CU
//     behind a fixed-delay virtual link.
//   * WAN: a geographic backbone — PoPs scattered over an extent of
//     hundreds of km, connected by a minimum spanning tree plus Waxman
//     random chords (P ∝ α·exp(−d/βL)), each PoP fronting a small BS
//     cluster. Long-haul fiber latency dominates (ms-scale), degree is
//     heterogeneous (tree leaves vs chord-rich hubs), and only a few PoPs
//     host compute.
//
// Determinism: every draw comes from an RngStream child derived from the
// config seed and a stable key (per-BS, per-PoP, per-link-pair), so a
// generated topology is a pure function of its config — same seed, same
// byte-identical structure (topo::topology_digest pins this in scn_test),
// independent of evaluation order or thread count.
#pragma once

#include <cstddef>
#include <cstdint>

#include "topo/topology.hpp"

namespace ovnes::scn {

struct MetroConfig {
  std::size_t num_bs = 96;          ///< base stations in the annulus
  std::size_t core_switches = 6;    ///< inner core ring
  std::size_t agg_per_core = 4;     ///< aggregation switches per core switch
  std::size_t edge_cu_sites = 3;    ///< edge CU sites, multihomed to the core
  double radius_km = 12.0;          ///< outer BS annulus radius
  double chord_fraction = 0.4;      ///< extra random agg–agg chords
  int bs_homing_min = 1;            ///< BS homes to [min,max] nearest aggs
  int bs_homing_max = 2;
  Micros core_cu_delay_us = 10000.0;  ///< metro-to-regional-DC link
  std::uint64_t seed = 1;
};

/// Build a metro topology; total node count is
/// num_bs + core + core·agg_per_core + edge_cu_sites + 1 (core CU).
[[nodiscard]] topo::Topology make_metro(const MetroConfig& cfg = {});

struct WanConfig {
  std::size_t num_pops = 24;        ///< backbone PoPs
  std::size_t bs_per_pop = 4;       ///< metro cluster fronted by each PoP
  double extent_km = 800.0;         ///< side of the geographic square
  double waxman_alpha = 0.35;       ///< chord probability scale
  double waxman_beta = 0.3;         ///< chord distance decay (fraction of L)
  std::size_t edge_cu_sites = 3;    ///< PoPs hosting an edge CU
  Micros core_cu_delay_us = 20000.0;  ///< national-DC virtual link
  std::uint64_t seed = 1;
};

/// Build a WAN topology; total node count is
/// num_pops·(1 + bs_per_pop) + edge_cu_sites + 1 (core CU).
[[nodiscard]] topo::Topology make_wan(const WanConfig& cfg = {});

/// Structural summary used by the distribution sanity checks and the
/// bench_regression correctness fields.
struct TopologyStats {
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t bs = 0;
  std::size_t cu = 0;
  double mean_degree = 0.0;     ///< over switch nodes only
  double max_degree = 0.0;
  double mean_link_delay_us = 0.0;
  double max_link_delay_us = 0.0;
  bool connected = false;       ///< every node reachable from node 0
};

[[nodiscard]] TopologyStats topology_stats(const topo::Topology& topo);

}  // namespace ovnes::scn
