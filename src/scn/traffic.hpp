// Scenario traffic models: heavy-tailed tenant demand, diurnal curves,
// flash-crowd spikes and forecast-error injection.
//
// The paper's simulation grids draw Gaussian per-tenant demand around a
// declared forecast. This module grows the workload space: per-tenant mean
// demand follows heavy-tailed laws (Pareto / lognormal — a few elephant
// tenants dominate, as in real slice populations), the day has a diurnal
// shape with an optional flash-crowd spike, and the realized process can be
// biased off the declared forecast to stress SLA-risk admission.
//
// Everything is generated from RngStream children keyed by (seed, stable
// label, entity index) — see common/rng.hpp's splittability contract — so a
// TrafficTable is a pure function of its config: byte-identical text (and
// digest) for the same seed at any thread count or generation order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ovnes::scn {

/// Per-tenant mean-demand scale distribution.
struct HeavyTailConfig {
  enum class Law { Pareto, Lognormal };
  Law law = Law::Pareto;
  double pareto_alpha = 1.8;   ///< tail index (1 < α <= 2: heavy, finite mean)
  double pareto_xmin = 1.0;    ///< scale floor (multiplies base_rate)
  double log_mu = 0.0;         ///< lognormal log-mean
  double log_sigma = 1.0;      ///< lognormal log-stddev
  double cap = 50.0;           ///< clamp (keeps a single elephant solvable)
};

/// Draw one per-tenant scale from `rng` (dimensionless multiplier >= 0).
[[nodiscard]] double sample_heavy_tail(RngStream& rng,
                                       const HeavyTailConfig& cfg);

/// Diurnal envelope: cosine day shape peaking at `peak_hour` with
/// peak/trough ratio `peak_ratio`; level(peak_hour) == 1.
struct DiurnalConfig {
  double peak_ratio = 3.0;
  double peak_hour = 14.0;
};

[[nodiscard]] double diurnal_level(const DiurnalConfig& cfg, double hour);

/// Flash crowd: `spikes` windows per day, each multiplying the load by
/// `multiplier` for `duration_hours`, at seeded random start hours.
struct FlashCrowdConfig {
  std::size_t spikes = 0;      ///< 0 disables
  double multiplier = 4.0;
  double duration_hours = 1.5;
};

/// Forecast-error injection: realized = (1 + bias)·jitter·forecast with
/// jitter = exp(g·noise − noise²/2), g ~ N(0,1) per tenant (mean-one, so
/// bias alone sets the mean error). bias > 0 = operator under-forecast.
struct ForecastErrorConfig {
  double bias = 0.0;
  double noise = 0.0;
};

struct TrafficModelConfig {
  std::size_t tenants = 32;
  std::size_t hours = 24;
  double base_rate_mbps = 10.0;  ///< demand = base·scale·envelope
  HeavyTailConfig heavy_tail;
  DiurnalConfig diurnal;
  FlashCrowdConfig flash;
  ForecastErrorConfig forecast;
  std::uint64_t seed = 1;
};

/// The generated workload: per-tenant declared forecasts λ̂ (the peak-hour
/// rate the tenant contracts for) and the realized per-(tenant, hour)
/// demand table the scenario replays against it.
struct TrafficTable {
  std::size_t tenants = 0;
  std::size_t hours = 0;
  std::vector<double> forecast_mbps;  ///< per tenant
  std::vector<double> realized_mbps;  ///< tenant-major, tenants × hours
  std::vector<double> envelope;       ///< shared hourly envelope (diurnal·flash)

  [[nodiscard]] double realized(std::size_t tenant, std::size_t hour) const {
    return realized_mbps[tenant * hours + hour];
  }
  /// Canonical text rendering (stable float formatting — json::format_double),
  /// one row per tenant. Byte-identical for equal configs on any compiler.
  [[nodiscard]] std::string to_text() const;
  /// FNV-1a over to_text().
  [[nodiscard]] std::uint64_t digest() const;
};

[[nodiscard]] TrafficTable make_traffic_table(const TrafficModelConfig& cfg);

/// Hill estimator of the tail index over the top `k` order statistics —
/// the scn_test distribution sanity check for the Pareto draws.
[[nodiscard]] double hill_tail_index(std::vector<double> samples,
                                     std::size_t k);

/// FNV-1a over a string (the digest primitive shared by scn tables and the
/// bench_regression report).
[[nodiscard]] std::uint64_t fnv1a(const std::string& text);

}  // namespace ovnes::scn
