#include "scn/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "topo/generators.hpp"

namespace ovnes::scn {

namespace {

/// Slice-type mix per tenant draw: mostly eMBB, a uRLLC/mMTC minority —
/// enough heterogeneity to exercise distinct SLA shapes without making the
/// mini instance infeasible.
slice::SliceType draw_type(RngStream& rng) {
  const double u = rng.uniform();
  if (u < 0.70) return slice::SliceType::eMBB;
  if (u < 0.90) return slice::SliceType::mMTC;
  return slice::SliceType::uRLLC;
}

}  // namespace

SlaRiskResult run_sla_risk_sweep(const SlaRiskConfig& cfg,
                                 exec::ThreadPool* pool) {
  const RngStream root(cfg.seed);
  std::vector<orch::ScenarioConfig> scenarios;
  scenarios.reserve(cfg.scenarios);
  for (std::size_t i = 0; i < cfg.scenarios; ++i) {
    RngStream sr = root.derive("scenario", i);
    orch::ScenarioConfig sc;
    if (cfg.topology_factory) {
      sc.topology_factory = [factory = cfg.topology_factory, i] {
        return factory(i);
      };
    } else {
      // Edge compute deliberately below the 20·N paper sizing so admission
      // is contended; abundant core behind the default 20 ms delay.
      sc.topology_factory = [num_bs = cfg.num_bs,
                             cores = cfg.edge_cores_per_bs] {
        const auto n = static_cast<double>(num_bs);
        return topo::make_mini(num_bs, cores * n, 100.0 * n);
      };
    }
    sc.seed = sr.derive("sim").seed();
    sc.k_paths = cfg.k_paths;
    sc.algorithm = cfg.algorithm;
    sc.samples_per_epoch = cfg.samples_per_epoch;
    sc.min_epochs = cfg.min_epochs;
    sc.max_epochs = cfg.max_epochs;
    sc.target_rse = 0.0;  // budget-bounded: always run max_epochs
    sc.forecast_bias = cfg.forecast.bias;
    sc.forecast_noise = cfg.forecast.noise;
    const auto n_tenants = static_cast<std::size_t>(
        sr.derive("tenants").uniform_int(
            static_cast<std::int64_t>(cfg.tenants_min),
            static_cast<std::int64_t>(cfg.tenants_max)));
    sc.tenants.reserve(n_tenants);
    for (std::size_t t = 0; t < n_tenants; ++t) {
      RngStream tr = sr.derive("tenant", t);
      orch::TenantSpec spec;
      spec.type = draw_type(tr);
      const double scale = sample_heavy_tail(tr, cfg.load_tail);
      spec.alpha = std::min(cfg.alpha_cap, cfg.base_alpha * scale);
      spec.sigma_ratio = cfg.sigma_ratio;
      spec.penalty_m = cfg.penalty_m;
      sc.tenants.push_back(spec);
    }
    scenarios.push_back(std::move(sc));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<orch::ScenarioResult> results =
      orch::run_scenarios(scenarios, pool);
  const auto t1 = std::chrono::steady_clock::now();

  SlaRiskResult agg;
  agg.scenarios = results.size();
  agg.wall_sec = std::chrono::duration<double>(t1 - t0).count();

  RunningStats revenue, viol_prob, viol_minutes, overbooked;
  EmpiricalDistribution rev_dist, viol_dist;
  rev_dist.reserve(results.size());
  viol_dist.reserve(results.size());
  std::size_t accepted = 0, requested = 0;
  // Canonical per-scenario rows: stable float formatting, insertion order —
  // the digest is the sweep's correctness fingerprint.
  std::string rows;
  rows.reserve(results.size() * 64);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const orch::ScenarioResult& r = results[i];
    revenue.add(r.mean_net_revenue);
    viol_prob.add(r.violation_prob);
    viol_minutes.add(r.violation_minutes);
    overbooked.add(r.mean_overbooked_mbps);
    rev_dist.add(r.mean_net_revenue);
    viol_dist.add(r.violation_minutes);
    accepted += r.accepted;
    requested += r.requested;
    rows += std::to_string(i);
    rows += ' ';
    rows += std::to_string(r.accepted);
    rows += '/';
    rows += std::to_string(r.requested);
    rows += ' ';
    rows += json::format_double(r.mean_net_revenue);
    rows += ' ';
    rows += json::format_double(r.violation_prob);
    rows += ' ';
    rows += json::format_double(r.violation_minutes);
    rows += '\n';
  }
  agg.accept_rate = requested > 0
                        ? static_cast<double>(accepted) /
                              static_cast<double>(requested)
                        : 0.0;
  agg.mean_net_revenue = revenue.mean();
  agg.revenue_p05 = rev_dist.count() ? rev_dist.quantile(0.05) : 0.0;
  agg.revenue_p50 = rev_dist.count() ? rev_dist.quantile(0.50) : 0.0;
  agg.violation_prob_mean = viol_prob.mean();
  agg.violation_minutes_mean = viol_minutes.mean();
  agg.violation_minutes_p95 = viol_dist.count() ? viol_dist.quantile(0.95) : 0.0;
  agg.violation_minutes_max = viol_minutes.max();
  agg.mean_overbooked_mbps = overbooked.mean();
  agg.rows_digest = fnv1a(rows);
  return agg;
}

}  // namespace ovnes::scn
