// Seeded event-script generation for the online admission service: a
// simulated day of tenant arrivals, monitoring updates, departures and
// epoch ticks, shaped by the scn traffic models (diurnal envelope,
// flash-crowd windows, optional heavy-tailed forecast rates, forecast-error
// bias on the observed peaks).
//
// Generalizes the day generator that lived inside bench_service_day: the
// bench, the svc regression cases of bench_regression, and scn_test all
// build their scripts here. A script is a pure function of its config
// (keyed RngStream children per arrival / update), so the same config
// yields a byte-identical event stream — script_digest pins that, and the
// service's own determinism contract turns it into a byte-identical
// decision log at any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scn/traffic.hpp"
#include "svc/events.hpp"

namespace ovnes::scn {

struct ServiceDayConfig {
  std::size_t tenants = 4000;    ///< arrivals over the day
  std::size_t hours = 24;        ///< one EpochTick per hour
  std::uint64_t seed = 2018;
  DiurnalConfig diurnal{.peak_ratio = 2.5, .peak_hour = 14.0};
  FlashCrowdConfig flash;        ///< spikes concentrate arrivals + load
  /// When set (spread > 0 path unused), declared rates λ̂ draw a
  /// heavy-tailed scale instead of the default uniform(0.3, 0.9)·SLA mix.
  bool heavy_tail_rates = false;
  HeavyTailConfig heavy_tail;
  /// Forecast error on the *observed* peaks relative to the declared λ̂:
  /// bias > 0 means monitoring sees more traffic than tenants declared —
  /// the overbooking-stress knob for the service.
  ForecastErrorConfig forecast;
  double depart_fraction = 0.15; ///< tenants departing explicitly (rest age out)
};

/// Build the whole day's event script (arrivals follow the envelope, every
/// live tenant files hourly demand updates, each hour ends with an
/// EpochTick). Pure function of `cfg`.
[[nodiscard]] std::vector<svc::Event> make_service_day(
    const ServiceDayConfig& cfg);

/// Canonical FNV-1a digest over the script (type, tenant, payload fields
/// through json::format_double) — byte-stable across compilers.
[[nodiscard]] std::uint64_t script_digest(const std::vector<svc::Event>& script);

}  // namespace ovnes::scn
