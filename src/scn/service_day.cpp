#include "scn/service_day.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace ovnes::scn {

std::vector<svc::Event> make_service_day(const ServiceDayConfig& cfg) {
  const RngStream root(cfg.seed);
  std::vector<svc::Event> script;

  // Hourly envelope: diurnal shape times flash-crowd windows (same
  // construction as make_traffic_table, so both workloads share semantics).
  std::vector<double> envelope(cfg.hours, 1.0);
  for (std::size_t h = 0; h < cfg.hours; ++h) {
    envelope[h] = diurnal_level(cfg.diurnal, static_cast<double>(h));
  }
  for (std::size_t k = 0; k < cfg.flash.spikes; ++k) {
    RngStream fr = root.derive("flash", k);
    const double start = fr.uniform(0.0, static_cast<double>(cfg.hours));
    for (std::size_t h = 0; h < cfg.hours; ++h) {
      const double delta =
          std::fmod(static_cast<double>(h) - start + static_cast<double>(cfg.hours),
                    static_cast<double>(cfg.hours));
      if (delta < cfg.flash.duration_hours) envelope[h] *= cfg.flash.multiplier;
    }
  }
  double curve = 0.0;
  for (const double e : envelope) curve += e;

  struct Live {
    std::uint64_t id;
    double lambda_hat;
    std::size_t depart_hour;  ///< 0 = ages out via duration_epochs
  };
  std::vector<Live> live;
  std::uint64_t next_id = 1;

  for (std::size_t h = 0; h < cfg.hours; ++h) {
    const double level = envelope[h];
    const auto arrivals = static_cast<std::size_t>(
        std::round(static_cast<double>(cfg.tenants) * level / curve));
    for (std::size_t a = 0; a < arrivals; ++a) {
      RngStream ar = root.derive("arrival", next_id);
      const double pick = ar.uniform();
      const auto type = pick < 0.6   ? slice::SliceType::eMBB
                        : pick < 0.9 ? slice::SliceType::mMTC
                                     : slice::SliceType::uRLLC;
      const double sla = slice::standard_template(type).sla_rate;
      Live t;
      t.id = next_id++;
      if (cfg.heavy_tail_rates) {
        // Heavy-tailed population: elephants declare near the SLA cap.
        const double scale = sample_heavy_tail(ar, cfg.heavy_tail);
        t.lambda_hat = std::min(0.95, 0.1 * scale) * sla;
      } else {
        t.lambda_hat = ar.uniform(0.3, 0.9) * sla;
      }
      const auto span = 2 + static_cast<std::uint64_t>(ar.uniform(0.0, 6.0));
      t.depart_hour =
          ar.flip(cfg.depart_fraction)
              ? std::min(cfg.hours - 1, h + 1 + static_cast<std::size_t>(span))
              : 0;
      script.push_back(svc::make_arrival(
          t.id, type, t.lambda_hat, ar.uniform(0.1, 0.5),
          1.0 + ar.uniform(0.0, 3.0),
          t.depart_hour != 0 ? 0 : static_cast<std::uint32_t>(span)));
      live.push_back(t);
    }

    // Hourly monitoring: the observed peak tracks the envelope (with jitter)
    // and carries the forecast-error bias; one in five updates refreshes the
    // declared forecast (feeding the drift trigger).
    for (const Live& t : live) {
      RngStream ur = root.derive("update", t.id * cfg.hours + h);
      double observed = t.lambda_hat * level * (0.8 + ur.uniform(0.0, 0.6));
      if (cfg.forecast.bias != 0.0 || cfg.forecast.noise != 0.0) {
        double err = 1.0 + cfg.forecast.bias;
        if (cfg.forecast.noise != 0.0) {
          err *= std::exp(ur.gaussian(0.0, cfg.forecast.noise) -
                          0.5 * cfg.forecast.noise * cfg.forecast.noise);
        }
        observed *= std::max(0.0, err);
      }
      const bool refresh = ur.flip(0.2);
      script.push_back(svc::make_demand_update(
          t.id, observed,
          refresh ? t.lambda_hat * (0.85 + ur.uniform(0.0, 0.3)) : -1.0));
    }

    std::vector<Live> still;
    still.reserve(live.size());
    for (const Live& t : live) {
      if (t.depart_hour == h && t.depart_hour != 0) {
        script.push_back(svc::make_departure(t.id));
      } else {
        still.push_back(t);
      }
    }
    live = std::move(still);
    script.push_back(svc::make_epoch_tick());
  }
  return script;
}

std::uint64_t script_digest(const std::vector<svc::Event>& script) {
  std::string text;
  text.reserve(script.size() * 32);
  for (const svc::Event& e : script) {
    text += svc::to_string(e.type);
    text += ' ';
    text += std::to_string(e.tenant_id);
    text += ' ';
    text += std::to_string(static_cast<int>(e.slice_type));
    text += ' ';
    text += json::format_double(e.lambda_hat);
    text += ' ';
    text += json::format_double(e.sigma_hat);
    text += ' ';
    text += json::format_double(e.observed);
    text += ' ';
    text += json::format_double(e.penalty_factor);
    text += ' ';
    text += std::to_string(e.duration_epochs);
    text += '\n';
  }
  return fnv1a(text);
}

}  // namespace ovnes::scn
