#include "scn/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace ovnes::scn {

namespace {

using topo::LinkTech;

using topo::NodeKind;
using topo::Topology;

/// The paper's compute sizing rule (§4.3.1): edge = 20·N cores split over
/// the edge sites, core = 5× the edge total.
void add_compute(Topology& topo, const std::vector<NodeId>& edge_nodes,
                 NodeId core_node, std::size_t num_bs) {
  const double edge_total = 20.0 * static_cast<double>(num_bs);
  const double per_site =
      edge_total / static_cast<double>(std::max<std::size_t>(1, edge_nodes.size()));
  for (std::size_t i = 0; i < edge_nodes.size(); ++i) {
    topo.add_cu(edge_nodes[i], per_site, /*is_edge=*/true,
                "edge" + std::to_string(i));
  }
  topo.add_cu(core_node, 5.0 * edge_total, /*is_edge=*/false, "core");
}

}  // namespace

Topology make_metro(const MetroConfig& cfg) {
  if (cfg.num_bs < 4 || cfg.core_switches < 3) {
    throw std::invalid_argument("make_metro: need >= 4 BSs and >= 3 core switches");
  }
  const RngStream root(cfg.seed);
  Topology topo;
  topo.name = "metro";

  // --- Core ring at the city centre.
  std::vector<NodeId> core;
  const double core_r = cfg.radius_km * 0.15;
  for (std::size_t i = 0; i < cfg.core_switches; ++i) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(i) /
                       static_cast<double>(cfg.core_switches);
    core.push_back(topo.graph.add_node(NodeKind::Switch, core_r * std::cos(ang),
                                       core_r * std::sin(ang),
                                       "core" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < cfg.core_switches; ++i) {
    RngStream lr = root.derive("core-link", i);
    topo.graph.add_link(core[i], core[(i + 1) % cfg.core_switches],
                        lr.uniform(40000.0, 200000.0), LinkTech::Fiber);
    // Cross-ring chords every other switch: the dense metro core.
    if (cfg.core_switches > 4 && i % 2 == 0) {
      topo.graph.add_link(core[i], core[(i + cfg.core_switches / 2) % cfg.core_switches],
                          lr.uniform(40000.0, 200000.0), LinkTech::Fiber);
    }
  }

  // --- Aggregation tier: agg_per_core switches fanning out of each core
  // switch, placed on an outer ring sector around their parent.
  std::vector<NodeId> aggs;
  const double agg_r = cfg.radius_km * 0.45;
  for (std::size_t c = 0; c < cfg.core_switches; ++c) {
    for (std::size_t a = 0; a < cfg.agg_per_core; ++a) {
      const std::size_t idx = c * cfg.agg_per_core + a;
      RngStream ar = root.derive("agg", idx);
      const double base = 2.0 * std::numbers::pi * static_cast<double>(c) /
                          static_cast<double>(cfg.core_switches);
      const double ang =
          base + (static_cast<double>(a) + ar.uniform(0.2, 0.8)) /
                     static_cast<double>(cfg.agg_per_core) * 2.0 *
                     std::numbers::pi / static_cast<double>(cfg.core_switches);
      const NodeId n = topo.graph.add_node(NodeKind::Switch,
                                           agg_r * std::cos(ang),
                                           agg_r * std::sin(ang),
                                           "agg" + std::to_string(idx));
      aggs.push_back(n);
      // Dual-homed into the core: own parent + the next core switch.
      topo.graph.add_link(n, core[c], ar.uniform(10000.0, 100000.0),
                          LinkTech::Fiber);
      topo.graph.add_link(n, core[(c + 1) % cfg.core_switches],
                          ar.uniform(10000.0, 100000.0), LinkTech::Fiber);
    }
  }
  // Random agg–agg chords for lateral path diversity.
  const auto num_chords = static_cast<std::size_t>(
      std::round(cfg.chord_fraction * static_cast<double>(aggs.size())));
  for (std::size_t k = 0; k < num_chords; ++k) {
    RngStream cr = root.derive("chord", k);
    const auto a = static_cast<std::size_t>(
        cr.uniform_int(0, static_cast<std::int64_t>(aggs.size()) - 1));
    const auto b = static_cast<std::size_t>(
        cr.uniform_int(0, static_cast<std::int64_t>(aggs.size()) - 1));
    if (a == b) continue;
    topo.graph.add_link(aggs[a], aggs[b], cr.uniform(10000.0, 40000.0),
                        LinkTech::Fiber);
  }

  // --- Base stations in the annulus, homed to nearest aggregation switches.
  for (std::size_t i = 0; i < cfg.num_bs; ++i) {
    RngStream br = root.derive("bs", i);
    const double ang = br.uniform(0.0, 2.0 * std::numbers::pi);
    const double rad =
        agg_r + (cfg.radius_km - agg_r) * std::sqrt(br.uniform());
    const NodeId bs = topo.graph.add_node(NodeKind::BaseStation,
                                          rad * std::cos(ang),
                                          rad * std::sin(ang),
                                          "bs" + std::to_string(i));
    std::vector<std::size_t> order(aggs.size());
    for (std::size_t s = 0; s < aggs.size(); ++s) order[s] = s;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return topo.graph.distance(bs, aggs[x]) < topo.graph.distance(bs, aggs[y]);
    });
    const auto homing = static_cast<std::size_t>(
        br.uniform_int(cfg.bs_homing_min, cfg.bs_homing_max));
    for (std::size_t h = 0; h < std::min(homing, aggs.size()); ++h) {
      // Access mix: mostly fiber, some wireless last-mile.
      const bool fiber = br.flip(0.8);
      topo.graph.add_link(bs, aggs[order[h]],
                          fiber ? br.uniform(2000.0, 20000.0)
                                : br.uniform(500.0, 4000.0),
                          fiber ? LinkTech::Fiber : LinkTech::Wireless);
    }
    topo.add_bs(bs, 100.0, kMbpsPerPrbIdeal, "bs" + std::to_string(i));
  }

  // --- Compute: edge CU sites multihomed into the core ring, plus the
  // regional core CU behind a fixed-delay virtual link.
  std::vector<NodeId> edge_nodes;
  for (std::size_t e = 0; e < cfg.edge_cu_sites; ++e) {
    RngStream er = root.derive("edge-cu", e);
    const NodeId n = topo.graph.add_node(
        NodeKind::ComputeUnit, core_r * 0.3 * static_cast<double>(e), 0.0,
        "edge-cu" + std::to_string(e));
    const std::size_t anchor = (e * cfg.core_switches) / cfg.edge_cu_sites;
    topo.graph.add_link(n, core[anchor], er.uniform(40000.0, 200000.0),
                        LinkTech::Fiber);
    topo.graph.add_link(n, core[(anchor + 1) % cfg.core_switches],
                        er.uniform(40000.0, 200000.0), LinkTech::Fiber);
    edge_nodes.push_back(n);
  }
  const NodeId core_cu =
      topo.graph.add_node(NodeKind::ComputeUnit, 0.0, 0.0, "core-cu");
  topo.graph.add_link(edge_nodes.front(), core_cu, 1e7, LinkTech::Virtual,
                      /*length=*/0.0, /*overhead=*/1.0, cfg.core_cu_delay_us);
  add_compute(topo, edge_nodes, core_cu, cfg.num_bs);
  return topo;
}

Topology make_wan(const WanConfig& cfg) {
  if (cfg.num_pops < 3 || cfg.edge_cu_sites < 1 ||
      cfg.edge_cu_sites > cfg.num_pops) {
    throw std::invalid_argument("make_wan: need >= 3 PoPs and 1 <= edge sites <= PoPs");
  }
  const RngStream root(cfg.seed);
  Topology topo;
  topo.name = "wan";

  // --- PoPs scattered over the extent.
  std::vector<NodeId> pops;
  std::vector<std::pair<double, double>> xy;
  for (std::size_t i = 0; i < cfg.num_pops; ++i) {
    RngStream pr = root.derive("pop", i);
    const double x = pr.uniform(0.0, cfg.extent_km);
    const double y = pr.uniform(0.0, cfg.extent_km);
    pops.push_back(topo.graph.add_node(NodeKind::Switch, x, y,
                                       "pop" + std::to_string(i)));
    xy.emplace_back(x, y);
  }
  const auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = xy[a].first - xy[b].first;
    const double dy = xy[a].second - xy[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };

  // --- Backbone: Prim MST guarantees connectivity; Waxman chords add the
  // heterogeneous-degree mesh on top (hubs collect chords, leaves stay
  // degree-1-plus-access).
  std::vector<bool> in_tree(cfg.num_pops, false);
  std::vector<double> best(cfg.num_pops, 1e18);
  std::vector<std::size_t> parent(cfg.num_pops, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < cfg.num_pops; ++j) {
    best[j] = dist(0, j);
    parent[j] = 0;
  }
  for (std::size_t step = 1; step < cfg.num_pops; ++step) {
    std::size_t pick = cfg.num_pops;
    for (std::size_t j = 0; j < cfg.num_pops; ++j) {
      if (!in_tree[j] && (pick == cfg.num_pops || best[j] < best[pick])) pick = j;
    }
    in_tree[pick] = true;
    RngStream lr = root.derive("mst-link", pick);
    topo.graph.add_link(pops[pick], pops[parent[pick]],
                        lr.uniform(40000.0, 200000.0), LinkTech::Fiber);
    for (std::size_t j = 0; j < cfg.num_pops; ++j) {
      if (!in_tree[j] && dist(pick, j) < best[j]) {
        best[j] = dist(pick, j);
        parent[j] = pick;
      }
    }
  }
  const double diag = cfg.extent_km * std::numbers::sqrt2;
  for (std::size_t a = 0; a < cfg.num_pops; ++a) {
    for (std::size_t b = a + 1; b < cfg.num_pops; ++b) {
      if (parent[a] == b || parent[b] == a) continue;  // MST edge exists
      RngStream wr = root.derive("waxman", a * cfg.num_pops + b);
      const double p =
          cfg.waxman_alpha * std::exp(-dist(a, b) / (cfg.waxman_beta * diag));
      if (wr.flip(p)) {
        topo.graph.add_link(pops[a], pops[b], wr.uniform(40000.0, 200000.0),
                            LinkTech::Fiber);
      }
    }
  }

  // --- BS clusters fronted by each PoP (short metro access spans).
  std::size_t bs_idx = 0;
  for (std::size_t i = 0; i < cfg.num_pops; ++i) {
    for (std::size_t b = 0; b < cfg.bs_per_pop; ++b) {
      RngStream br = root.derive("bs", i * cfg.bs_per_pop + b);
      const double ang = br.uniform(0.0, 2.0 * std::numbers::pi);
      const double rad = br.uniform(0.5, 8.0);
      const NodeId bs = topo.graph.add_node(
          NodeKind::BaseStation, xy[i].first + rad * std::cos(ang),
          xy[i].second + rad * std::sin(ang), "bs" + std::to_string(bs_idx));
      const bool fiber = br.flip(0.6);
      topo.graph.add_link(bs, pops[i],
                          fiber ? br.uniform(2000.0, 20000.0)
                                : br.uniform(500.0, 4000.0),
                          fiber ? LinkTech::Fiber : LinkTech::Wireless);
      topo.add_bs(bs, 100.0, kMbpsPerPrbIdeal,
                  "bs" + std::to_string(bs_idx));
      ++bs_idx;
    }
  }

  // --- Compute: edge CUs at evenly spaced PoPs, national core CU behind a
  // fixed-delay virtual link off PoP 0.
  std::vector<NodeId> edge_nodes;
  for (std::size_t e = 0; e < cfg.edge_cu_sites; ++e) {
    RngStream er = root.derive("edge-cu", e);
    const std::size_t at = (e * cfg.num_pops) / cfg.edge_cu_sites;
    const NodeId n = topo.graph.add_node(NodeKind::ComputeUnit,
                                         xy[at].first, xy[at].second,
                                         "edge-cu" + std::to_string(e));
    topo.graph.add_link(n, pops[at], er.uniform(40000.0, 200000.0),
                        LinkTech::Fiber, /*length=*/0.5);
    edge_nodes.push_back(n);
  }
  const NodeId core_cu = topo.graph.add_node(NodeKind::ComputeUnit,
                                             xy[0].first, xy[0].second,
                                             "core-cu");
  topo.graph.add_link(pops[0], core_cu, 1e7, LinkTech::Virtual,
                      /*length=*/0.0, /*overhead=*/1.0, cfg.core_cu_delay_us);
  add_compute(topo, edge_nodes, core_cu, bs_idx);
  return topo;
}

TopologyStats topology_stats(const topo::Topology& topo) {
  TopologyStats s;
  s.nodes = topo.graph.num_nodes();
  s.links = topo.graph.num_links();
  s.bs = topo.num_bs();
  s.cu = topo.num_cu();

  std::size_t switches = 0;
  double degree_sum = 0.0;
  for (std::size_t i = 0; i < s.nodes; ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    const auto deg = static_cast<double>(topo.graph.adjacency(id).size());
    if (topo.graph.node(id).kind == NodeKind::Switch) {
      ++switches;
      degree_sum += deg;
    }
    s.max_degree = std::max(s.max_degree, deg);
  }
  if (switches > 0) s.mean_degree = degree_sum / static_cast<double>(switches);

  for (std::size_t l = 0; l < s.links; ++l) {
    const double d =
        topo.graph.link_delay_us(LinkId(static_cast<std::uint32_t>(l)));
    s.mean_link_delay_us += d;
    s.max_link_delay_us = std::max(s.max_link_delay_us, d);
  }
  if (s.links > 0) s.mean_link_delay_us /= static_cast<double>(s.links);

  // BFS from node 0 over the adjacency lists.
  std::vector<bool> seen(s.nodes, false);
  std::vector<std::size_t> frontier{0};
  if (s.nodes > 0) seen[0] = true;
  std::size_t reached = s.nodes > 0 ? 1 : 0;
  while (!frontier.empty()) {
    const std::size_t at = frontier.back();
    frontier.pop_back();
    for (const topo::Adjacency& adj :
         topo.graph.adjacency(NodeId(static_cast<std::uint32_t>(at)))) {
      const std::size_t nb = adj.neighbor.index();
      if (!seen[nb]) {
        seen[nb] = true;
        ++reached;
        frontier.push_back(nb);
      }
    }
  }
  s.connected = reached == s.nodes;
  return s;
}

}  // namespace ovnes::scn
