// Monte Carlo SLA-risk sweeps: thousands of independent admission scenarios
// through orch::run_scenarios on the exec pool.
//
// Each scenario i draws its instance (tenant count, per-tenant load factors
// from a heavy-tailed law, slice-type mix, forecast error) from RngStream
// children keyed by ("scenario", i) off the sweep seed — so scenario i's
// configuration is a pure function of (config, i), independent of sweep
// order and OVNES_THREADS (common/rng.hpp splittability contract). Results
// come back in insertion order; the aggregate (risk quantiles plus a digest
// over the canonical per-scenario rows) is therefore byte-stable at any
// thread count — bench_regression pins it as a correctness field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "orch/scenario.hpp"
#include "scn/traffic.hpp"

namespace ovnes::exec {
class ThreadPool;
}  // namespace ovnes::exec

namespace ovnes::scn {

struct SlaRiskConfig {
  std::size_t scenarios = 1000;
  std::uint64_t seed = 7;
  /// Instance shape: a mini topology per scenario (num_bs BSs, one edge CU
  /// sized for contention, one core CU) unless topology_factory is set —
  /// then factory(scenario_index) builds it (must be pure; the scn metro /
  /// WAN families qualify).
  std::size_t num_bs = 5;
  double edge_cores_per_bs = 10.0;  ///< < 20: compute is contended
  std::function<topo::Topology(std::size_t)> topology_factory;
  std::size_t k_paths = 2;
  // Tenant population draws.
  std::size_t tenants_min = 6;
  std::size_t tenants_max = 12;
  HeavyTailConfig load_tail;     ///< per-tenant load factor α = base·scale
  double base_alpha = 0.15;      ///< α floor/scale (λ̄ = α·Λ)
  double alpha_cap = 0.9;
  double sigma_ratio = 0.25;
  double penalty_m = 4.0;
  // Forecast-error stress applied to every scenario.
  ForecastErrorConfig forecast;
  // Solver + simulation budget (kept small: thousands of scenarios).
  orch::Algorithm algorithm = orch::Algorithm::Kac;
  std::size_t samples_per_epoch = 8;
  std::size_t min_epochs = 2;
  std::size_t max_epochs = 4;
};

struct SlaRiskResult {
  std::size_t scenarios = 0;
  double accept_rate = 0.0;          ///< Σ accepted / Σ requested
  double mean_net_revenue = 0.0;     ///< mean of per-scenario means
  double revenue_p05 = 0.0;          ///< revenue value-at-risk (5th pct)
  double revenue_p50 = 0.0;
  double violation_prob_mean = 0.0;
  double violation_minutes_mean = 0.0;
  double violation_minutes_p95 = 0.0;
  double violation_minutes_max = 0.0;
  double mean_overbooked_mbps = 0.0;
  std::uint64_t rows_digest = 0;     ///< FNV over canonical per-scenario rows
  double wall_sec = 0.0;             ///< sweep wall time (not digest-covered)
};

/// Run the sweep on `pool` (global pool when null). Deterministic up to
/// wall_sec; see the file comment.
[[nodiscard]] SlaRiskResult run_sla_risk_sweep(const SlaRiskConfig& cfg,
                                               exec::ThreadPool* pool = nullptr);

}  // namespace ovnes::scn
